// Command hqserved is the sweep service: a long-lived HTTP daemon that
// accepts concurrent campaign requests (a dimension range, a protocol
// set, seeds, and an optional fault plan), executes them on the
// pooled simulation fleet, and streams per-run progress as chunked
// JSONL. Admission is bounded (429 past the queue), campaigns carry
// deadlines and cooperative cancellation, a panicking run fails only
// its own campaign, results are cached by their deterministic key, and
// every accepted/completed campaign is journaled fsync-durably so a
// restarted daemon resumes interrupted work.
//
// Usage:
//
//	hqserved                         # serve on :8080, journal hqserved.jsonl
//	hqserved -addr :9000 -journal /var/lib/hq/journal.jsonl
//	hqserved -smoke                  # self-contained end-to-end smoke (CI)
//	hqserved -loadtest               # the robustness load-test, with numbers
//
// Submit with curl:
//
//	curl -s localhost:8080/campaigns -d '{"name":"sweep","dim_min":2,"dim_max":8,"protocols":["visibility","clean"],"seeds":[1,2]}'
//	curl -sN localhost:8080/campaigns/c0/stream     # live JSONL progress
//	curl -s  localhost:8080/campaigns/c0            # snapshot + records
//	curl -sX POST localhost:8080/campaigns/c0/cancel
//
// SIGTERM/SIGINT drains gracefully: in-flight campaigns finish, queued
// ones stay journaled for the next start, then the daemon exits 0.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"hypersearch/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		journal  = flag.String("journal", "hqserved.jsonl", "crash-safe campaign journal path")
		active   = flag.Int("max-active", 0, "max concurrently executing campaigns (0 = NumCPU)")
		depth    = flag.Int("queue-depth", 0, "campaign queue depth (0 = 2x max-active)")
		workers  = flag.Int("workers", 0, "sched workers per campaign (0 = auto)")
		maxDim   = flag.Int("max-dim", 12, "largest admissible dimension")
		maxRuns  = flag.Int("max-runs", 4096, "largest admissible campaign expansion")
		deadline = flag.Duration("default-deadline", 0, "deadline for campaigns that set none (0 = unlimited)")
		drainFor = flag.Duration("drain-timeout", 30*time.Second, "graceful drain budget on SIGTERM")
		smoke    = flag.Bool("smoke", false, "run the self-contained smoke check and exit")
		loadtest = flag.Bool("loadtest", false, "run the robustness load-test and exit")
	)
	flag.Parse()

	cfg := serve.Config{
		JournalPath:     *journal,
		MaxActive:       *active,
		QueueDepth:      *depth,
		Workers:         *workers,
		MaxDim:          *maxDim,
		MaxRuns:         *maxRuns,
		DefaultDeadline: *deadline,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "hqserved: "+format+"\n", args...)
		},
	}

	var err error
	switch {
	case *smoke:
		err = runSmoke(cfg)
	case *loadtest:
		err = runLoadTest()
	default:
		err = runServe(cfg, *addr, *drainFor)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hqserved:", err)
		os.Exit(1)
	}
}

// runServe is daemon mode: serve until SIGTERM/SIGINT, then drain and
// exit cleanly.
func runServe(cfg serve.Config, addr string, drainFor time.Duration) error {
	srv, err := serve.NewServer(cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	httpErr := make(chan error, 1)
	go func() { httpErr <- hs.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "hqserved: serving on %s (journal %s)\n", ln.Addr(), cfg.JournalPath)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "hqserved: %v: draining (budget %s)\n", s, drainFor)
	case err := <-httpErr:
		return fmt.Errorf("http server: %w", err)
	}

	// Stop accepting connections first, then drain campaigns: in-flight
	// work finishes, queued campaigns stay journaled for the next start.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drainFor)
	defer cancel()
	hs.Shutdown(shutdownCtx)
	if err := srv.Drain(shutdownCtx); err != nil {
		fmt.Fprintf(os.Stderr, "hqserved: drain budget exhausted, campaigns cancelled: %v\n", err)
	}
	if err := srv.Close(); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "hqserved: drained, bye")
	return nil
}

// runSmoke is `make serve-smoke`: start a daemon on an ephemeral port
// with a scratch journal, submit a small campaign, require streamed
// per-run progress, then resubmit it verbatim and require the rerun to
// be served from the result cache with byte-identical records.
func runSmoke(cfg serve.Config) error {
	dir, err := os.MkdirTemp("", "hqserved-smoke-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	cfg.JournalPath = filepath.Join(dir, "journal.jsonl")
	srv, err := serve.NewServer(cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	base := "http://" + ln.Addr().String()
	body := `{"name":"smoke","dim_min":2,"dim_max":6,"protocols":["visibility","clean"],"seeds":[1]}`

	first, nruns, err := smokeCampaign(base, body)
	if err != nil {
		return err
	}
	fmt.Printf("smoke: first submission simulated %d runs, streamed live\n", nruns)
	hits0, _ := srv.Cache().Stats()
	second, nruns2, err := smokeCampaign(base, body)
	if err != nil {
		return err
	}
	hits1, _ := srv.Cache().Stats()
	if got := hits1 - hits0; got < int64(nruns2) {
		return fmt.Errorf("smoke: rerun should be cache-served, got %d hits for %d runs", got, nruns2)
	}
	if !bytes.Equal(first, second) {
		return fmt.Errorf("smoke: cache-served records differ from simulated ones:\nfirst:  %s\nsecond: %s", first, second)
	}
	fmt.Printf("smoke: identical resubmission was a cache hit, records byte-identical\n")

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	hs.Shutdown(ctx)
	if err := srv.Drain(ctx); err != nil {
		return err
	}
	if err := srv.Close(); err != nil {
		return err
	}
	fmt.Println("smoke: ok")
	return nil
}

// smokeCampaign submits one campaign, follows its stream to the done
// event, and returns the canonical JSON of its run records plus the
// streamed run count.
func smokeCampaign(base, body string) ([]byte, int, error) {
	resp, err := http.Post(base+"/campaigns", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return nil, 0, fmt.Errorf("smoke: submit got HTTP %d", resp.StatusCode)
	}
	var sn serve.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&sn); err != nil {
		return nil, 0, err
	}

	stream, err := http.Get(base + "/campaigns/" + sn.ID + "/stream")
	if err != nil {
		return nil, 0, err
	}
	defer stream.Body.Close()
	runs, done := 0, false
	sc := bufio.NewScanner(stream.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		var e serve.StreamEvent
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return nil, 0, fmt.Errorf("smoke: bad stream line: %w", err)
		}
		switch e.Type {
		case "run":
			runs++
		case "done":
			if e.Status != serve.StatusCompleted {
				return nil, 0, fmt.Errorf("smoke: campaign %s ended %s (%s)", sn.ID, e.Status, e.Error)
			}
			done = true
		}
	}
	if err := sc.Err(); err != nil {
		return nil, 0, err
	}
	if !done {
		return nil, 0, errors.New("smoke: stream ended without a done event")
	}
	if runs == 0 {
		return nil, 0, errors.New("smoke: no per-run progress was streamed")
	}

	final, err := http.Get(base + "/campaigns/" + sn.ID)
	if err != nil {
		return nil, 0, err
	}
	defer final.Body.Close()
	var fin serve.Snapshot
	if err := json.NewDecoder(final.Body).Decode(&fin); err != nil {
		return nil, 0, err
	}
	if fin.Done != runs || len(fin.Runs) != runs {
		return nil, 0, fmt.Errorf("smoke: streamed %d runs but snapshot has done=%d records=%d", runs, fin.Done, len(fin.Runs))
	}
	recs, err := json.Marshal(fin.Runs)
	return recs, runs, err
}

// runLoadTest runs the robustness harness and prints its report — the
// source of the EXPERIMENTS.md S1 numbers.
func runLoadTest() error {
	dir, err := os.MkdirTemp("", "hqserved-loadtest-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	rep, err := serve.RunLoadTest(serve.LoadConfig{Dir: dir, MaxDim: 8})
	if rep != nil {
		fmt.Println("loadtest:", rep)
	}
	return err
}
