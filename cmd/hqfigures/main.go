// Command hqfigures regenerates the paper's figures as ASCII art:
//
//	1 — the broadcast tree T(6) of H_6 (Figure 1)
//	2 — the cleaning order of Algorithm CLEAN on H_6 (Figure 2)
//	3 — the classes C_i (Figure 3)
//	4 — the cleaning schedule of CLEAN WITH VISIBILITY on H_6 (Figure 4)
//
// Usage:
//
//	hqfigures            # all four
//	hqfigures -fig 2
//	hqfigures -fig 1 -d 4
package main

import (
	"flag"
	"fmt"
	"os"

	"hypersearch/internal/core"
	"hypersearch/internal/hypercube"
	"hypersearch/internal/viz"
)

func main() {
	var (
		fig = flag.Int("fig", 0, "figure number 1-4 (0 = all)")
		dim = flag.Int("d", 6, "hypercube dimension")
	)
	flag.Parse()

	if *dim > hypercube.MaterializeLimit {
		fmt.Fprintf(os.Stderr,
			"hqfigures: figures render every node and need a materialized board; d=%d exceeds the limit of %d — for big boards use hqsearch -stream-trace or the hqbench scale families instead\n",
			*dim, hypercube.MaterializeLimit)
		os.Exit(2)
	}

	show := func(n int) {
		switch n {
		case 1:
			fmt.Printf("Figure 1 — broadcast tree\n%s\n", viz.BroadcastTree(*dim))
		case 2:
			_, env, err := core.Run(core.Spec{Strategy: core.Clean, Dim: *dim, Record: true})
			fail(err)
			fmt.Printf("Figure 2 — cleaning order under CLEAN (H_%d)\n%s\n", *dim, viz.CleanOrder(env.H, env.B, false))
		case 3:
			d := *dim
			if flag.Lookup("d").Value.String() == "6" {
				d = 4 // the paper draws Figure 3 at H_4 scale
			}
			fmt.Printf("Figure 3 — classes C_i\n%s\n", viz.Classes(d))
		case 4:
			_, env, err := core.Run(core.Spec{Strategy: core.Visibility, Dim: *dim, Record: true})
			fail(err)
			fmt.Printf("Figure 4 — cleaning schedule under CLEAN WITH VISIBILITY (H_%d)\n%s\n", *dim, viz.CleanOrder(env.H, env.B, true))
		default:
			fmt.Fprintf(os.Stderr, "hqfigures: unknown figure %d\n", n)
			os.Exit(2)
		}
	}
	if *fig == 0 {
		for n := 1; n <= 4; n++ {
			show(n)
		}
		return
	}
	show(*fig)
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "hqfigures:", err)
		os.Exit(2)
	}
}
