// Command hqexperiments regenerates the paper's evaluation: every
// theorem-level cost bound and Section-5 observation as a
// measured-versus-claimed markdown report, plus the four figures.
//
// Usage:
//
//	hqexperiments                 # every experiment, default sweep
//	hqexperiments -exp T2 -maxd 14
//	hqexperiments -exp X3 -seeds 50
//	hqexperiments -figures
package main

import (
	"flag"
	"fmt"
	"os"

	"hypersearch/internal/experiments"
	"hypersearch/internal/sched"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id (T2,T3,T4,T5,T7,T8,V1,V2,X1..X9) or 'all'")
		maxD    = flag.Int("maxd", 10, "largest hypercube dimension in sweeps")
		seeds   = flag.Int("seeds", 10, "adversarial seeds for robustness experiments")
		figures = flag.Bool("figures", false, "render the four figures instead of tables")
		workers = flag.Int("workers", sched.DefaultWorkers(), "parallel workers for independent runs (1 = serial); output is identical for every value")
	)
	flag.Parse()

	if *figures {
		for _, f := range experiments.Figures() {
			fmt.Println(f)
		}
		return
	}

	var reports []experiments.Report
	switch *exp {
	case "all":
		reports = experiments.All(*maxD, *seeds, *workers)
	case "T2":
		reports = []experiments.Report{experiments.T2(*maxD)}
	case "T3":
		reports = []experiments.Report{experiments.T3(*maxD)}
	case "T4":
		reports = []experiments.Report{experiments.T4(*maxD)}
	case "T5":
		reports = []experiments.Report{experiments.T5(*maxD)}
	case "T7":
		reports = []experiments.Report{experiments.T7(*maxD)}
	case "T8":
		reports = []experiments.Report{experiments.T8(*maxD)}
	case "V1":
		reports = []experiments.Report{experiments.V1(*maxD)}
	case "V2":
		reports = []experiments.Report{experiments.V2(*maxD)}
	case "X1":
		reports = []experiments.Report{experiments.X1(*maxD)}
	case "X2":
		reports = []experiments.Report{experiments.X2()}
	case "X3":
		reports = []experiments.Report{experiments.X3(*seeds, *workers)}
	case "X4":
		reports = []experiments.Report{experiments.X4(6)}
	case "X5":
		reports = []experiments.Report{experiments.X5(7)}
	case "X6":
		reports = []experiments.Report{experiments.XIntruder(6, *seeds, *workers)}
	case "X7":
		reports = []experiments.Report{experiments.X7(*maxD)}
	case "X8":
		m := *maxD
		if m > 8 {
			m = 8
		}
		reports = []experiments.Report{experiments.X8(m)}
	case "X9":
		m := *maxD
		if m > 10 {
			m = 10
		}
		reports = []experiments.Report{experiments.X9(m, *seeds, *workers)}
	case "X10":
		reports = []experiments.Report{experiments.X10()}
	default:
		fmt.Fprintf(os.Stderr, "hqexperiments: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	for _, r := range reports {
		fmt.Println(r.Render())
	}
}
