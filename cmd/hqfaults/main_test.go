package main

import "testing"

// The campaign report is built only from deterministic quantities, so
// the parallel fan-out must render byte-for-byte what the serial path
// renders — the scheduler determinism contract on the fault surface.
func TestCampaignParallelMatchesSerial(t *testing.T) {
	const d = 3
	serial, okS, err := runCampaign(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, okP, err := runCampaign(d, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !okS || !okP {
		t.Fatalf("campaign failed (serial ok=%v, parallel ok=%v):\n%s", okS, okP, serial)
	}
	if serial != parallel {
		t.Fatalf("parallel campaign diverged from serial.\nserial:\n%s\nparallel:\n%s", serial, parallel)
	}
}
