package main

import "testing"

// The campaign report is built only from deterministic quantities, so
// the parallel fan-out must render byte-for-byte what the serial path
// renders — the scheduler determinism contract on the fault surface.
// Both families are under the contract.
func TestCampaignParallelMatchesSerial(t *testing.T) {
	const d = 3
	serial, okS, err := runFamilies(d, 1, familyAll)
	if err != nil {
		t.Fatal(err)
	}
	parallel, okP, err := runFamilies(d, 4, familyAll)
	if err != nil {
		t.Fatal(err)
	}
	if !okS || !okP {
		t.Fatalf("campaign failed (serial ok=%v, parallel ok=%v):\n%s", okS, okP, serial)
	}
	if serial != parallel {
		t.Fatalf("parallel campaign diverged from serial.\nserial:\n%s\nparallel:\n%s", serial, parallel)
	}
}

// The netsim family alone must also replay byte-identically — the
// property `-verify` enforces on the CLI.
func TestNetsimFamilyVerifyReplay(t *testing.T) {
	const d = 4
	first, ok, err := runFamilies(d, 2, familyNetsim)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("netsim campaign failed:\n%s", first)
	}
	again, _, err := runFamilies(d, 2, familyNetsim)
	if err != nil {
		t.Fatal(err)
	}
	if first != again {
		t.Fatalf("netsim campaign rerun diverged.\nfirst:\n%s\nagain:\n%s", first, again)
	}
}
