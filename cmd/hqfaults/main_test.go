package main

import "testing"

// The campaign report is built only from deterministic quantities, so
// the parallel fan-out must render byte-for-byte what the serial path
// renders — the scheduler determinism contract on the fault surface.
// Both families are under the contract.
func TestCampaignParallelMatchesSerial(t *testing.T) {
	const d = 3
	serial, okS, err := runFamilies(d, 1, familyAll, nil)
	if err != nil {
		t.Fatal(err)
	}
	parallel, okP, err := runFamilies(d, 4, familyAll, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !okS || !okP {
		t.Fatalf("campaign failed (serial ok=%v, parallel ok=%v):\n%s", okS, okP, serial)
	}
	if serial != parallel {
		t.Fatalf("parallel campaign diverged from serial.\nserial:\n%s\nparallel:\n%s", serial, parallel)
	}
}

// The netsim family alone must also replay byte-identically — the
// property `-verify` enforces on the CLI.
func TestNetsimFamilyVerifyReplay(t *testing.T) {
	const d = 4
	first, ok, err := runFamilies(d, 2, familyNetsim, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("netsim campaign failed:\n%s", first)
	}
	again, _, err := runFamilies(d, 2, familyNetsim, nil)
	if err != nil {
		t.Fatal(err)
	}
	if first != again {
		t.Fatalf("netsim campaign rerun diverged.\nfirst:\n%s\nagain:\n%s", first, again)
	}
}

// A -scenarios subset must run exactly the named scenarios and replay
// byte-identically, and an unknown name must be rejected up front.
func TestScenarioSubsetSelection(t *testing.T) {
	keep, err := parseScenarios("homebase-islanded , crash-cascade")
	if err != nil {
		t.Fatal(err)
	}
	first, ok, err := runFamilies(3, 2, familyAll, keep)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("subset campaign failed:\n%s", first)
	}
	for _, want := range []string{"homebase-islanded", "crash-cascade"} {
		if !contains(first, want) {
			t.Errorf("subset report missing scenario %q:\n%s", want, first)
		}
	}
	for _, absent := range []string{"lossy-links", "cleaner-crash", "clean-cut"} {
		if contains(first, absent) {
			t.Errorf("subset report includes unselected scenario %q:\n%s", absent, first)
		}
	}
	again, _, err := runFamilies(3, 2, familyAll, keep)
	if err != nil {
		t.Fatal(err)
	}
	if first != again {
		t.Fatalf("subset rerun diverged.\nfirst:\n%s\nagain:\n%s", first, again)
	}

	if _, err := parseScenarios("no-such-scenario"); err == nil {
		t.Error("unknown scenario name accepted")
	}
	// A typo must come back with the nearest real scenario, the same
	// hint hqbench gives on unknown families.
	if _, err := parseScenarios("lossy-link"); err == nil || indexOf(err.Error(), `did you mean "lossy-links"`) < 0 {
		t.Errorf("typo suggestion missing or wrong: %v", err)
	}
	if sel, err := parseScenarios(""); err != nil || sel != nil {
		t.Errorf("empty selection should mean all (nil), got %v, %v", sel, err)
	}
}

func contains(report, name string) bool {
	for _, line := range splitLines(report) {
		if len(line) > 0 && line[0] == '|' && indexOf(line, name) >= 0 {
			return true
		}
	}
	return false
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return append(out, s[start:])
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
