// Command hqfaults runs the deterministic fault-injection campaign: a
// declarative set of named fault scenarios executed against the
// crash-tolerant goroutine runtimes and the discrete-event engine,
// each checked by the trace-replay invariant verifier and compared
// against its fault-free baseline.
//
// Usage:
//
//	hqfaults            # run the campaign on H_4
//	hqfaults -d 5       # bigger cube
//	hqfaults -verify    # run twice, require byte-identical reports
//
// The report is deliberately built only from deterministic quantities
// (move counts, logical/virtual times, recovery statistics), so two
// runs of the same campaign produce byte-identical output; -verify
// enforces that.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"hypersearch/internal/faults"
	"hypersearch/internal/hypercube"
	"hypersearch/internal/invariant"
	"hypersearch/internal/metrics"
	"hypersearch/internal/runtime"
	"hypersearch/internal/sched"
	"hypersearch/internal/strategy"
	"hypersearch/internal/strategy/coordinated"
	"hypersearch/internal/trace"
)

// Engines a scenario can run on.
const (
	engineCleanFT = "clean-ft"  // crash-tolerant coordinated goroutine runtime
	engineVisFT   = "vis-ft"    // fault-injected visibility goroutine runtime
	engineDES     = "des-clean" // discrete-event CLEAN with kernel interception
)

// scenario is one named entry of the declarative campaign.
type scenario struct {
	name   string
	engine string
	plan   func(d int) *faults.Plan
}

// campaign returns the named scenarios, every one seeded and
// deterministic. Crash targets use the schedule-independent trigger
// counters: the synchronizer's own move sequence and per-order edge
// sequences (phase-0 escort keys p0.e<i> exist for every d >= 2).
func campaign() []scenario {
	return []scenario{
		{"cleaner-crash", engineCleanFT, func(d int) *faults.Plan {
			return &faults.Plan{Name: "cleaner-crash", Seed: 101, Faults: []faults.Fault{
				{Kind: faults.Crash, Target: "order:p0.e1", At: 1},
			}}
		}},
		{"synchronizer-crash", engineCleanFT, func(d int) *faults.Plan {
			// The d=2 synchronizer makes only 4 moves, so the trigger
			// must scale with the cube: 2d-1 fires at every d >= 2.
			return &faults.Plan{Name: "synchronizer-crash", Seed: 102, Faults: []faults.Fault{
				{Kind: faults.Crash, Target: faults.TargetSync, At: 2*d - 1},
			}}
		}},
		{"cleaner-stall", engineCleanFT, func(d int) *faults.Plan {
			return &faults.Plan{Name: "cleaner-stall", Seed: 103, Faults: []faults.Fault{
				{Kind: faults.Stall, Target: faults.TargetAny, At: 5, Delay: 200},
				{Kind: faults.Stall, Target: faults.TargetSync, At: 3, Delay: 120},
			}}
		}},
		{"latency-spike", engineDES, func(d int) *faults.Plan {
			return &faults.Plan{Name: "latency-spike", Seed: 104, Faults: []faults.Fault{
				{Kind: faults.LatencySpike, Target: faults.TargetAny, At: 10, Until: 60, Delay: 25},
				{Kind: faults.KernelLag, From: 20, To: 60},
			}}
		}},
		{"lock-starvation", engineVisFT, func(d int) *faults.Plan {
			return &faults.Plan{Name: "lock-starvation", Seed: 105, Faults: []faults.Fault{
				{Kind: faults.LockStarve, Target: faults.TargetAny, At: 6, Delay: 150},
				{Kind: faults.LockStarve, Target: faults.TargetAny, At: 11, Delay: 150},
			}}
		}},
		{"lost-wakeup", engineVisFT, func(d int) *faults.Plan {
			return &faults.Plan{Name: "lost-wakeup", Seed: 106, Faults: []faults.Fault{
				{Kind: faults.LostWakeup, At: 1, Until: 200},
			}}
		}},
		{"mixed", engineCleanFT, func(d int) *faults.Plan {
			return &faults.Plan{Name: "mixed", Seed: 107, Faults: []faults.Fault{
				{Kind: faults.Crash, Target: "order:p0.e0", At: 1},
				{Kind: faults.Crash, Target: faults.TargetSync, At: 2*d - 1},
				{Kind: faults.LatencySpike, Target: faults.TargetAny, At: 4, Until: 20, Delay: 10},
				{Kind: faults.Stall, Target: faults.TargetAny, At: 12, Delay: 80},
				{Kind: faults.LostWakeup, At: 3, Until: 15},
			}}
		}},
	}
}

// outcome collects the deterministic facts of one scenario run.
type outcome struct {
	name, engine string

	moves  int64 // total board moves
	dMoves int64 // overhead vs the engine's fault-free baseline
	mkspan int64 // logical (goroutines) or virtual (DES) completion time
	dTime  int64

	crashes, reassigned, reelections, spares int

	invariant string // "ok" or the first violation
	pass      bool
}

// baseline is an engine's fault-free reference run.
type baseline struct {
	moves, mkspan int64
}

// ftConfig is the goroutine-runtime configuration of the campaign: a
// fixed scheduler seed, mild real latency, and a lease TTL short
// enough for a snappy CLI run yet still 60x the heartbeat.
func ftConfig(seed int64, plan *faults.Plan) runtime.Config {
	return runtime.Config{
		Seed:           seed,
		MaxLatency:     300 * time.Microsecond,
		Faults:         plan,
		Record:         true,
		HeartbeatEvery: 2 * time.Millisecond,
		LeaseTTL:       120 * time.Millisecond,
		FaultUnit:      50 * time.Microsecond,
	}
}

func checkLog(l *trace.Log, d int) string {
	rep, err := invariant.Check(l, hypercube.New(d), 0)
	if err != nil {
		return err.Error()
	}
	if !rep.Ok() {
		if len(rep.Violations) > 0 {
			return rep.Violations[0]
		}
		return rep.String()
	}
	return "ok"
}

func runFT(d int, engine string, plan *faults.Plan) (runtime.FTReport, error) {
	if engine == engineVisFT {
		return runtime.RunVisibilityFT(d, ftConfig(7, plan))
	}
	return runtime.RunCleanFT(d, ftConfig(7, plan))
}

func runDES(d int, plan *faults.Plan) (metrics.Result, *strategy.Env, error) {
	opts := strategy.Options{Record: true, Contiguity: strategy.CheckEveryMove}
	if plan != nil {
		if err := plan.Validate(); err != nil {
			return metrics.Result{}, nil, err
		}
		if plan.RequiresRecovery() {
			return metrics.Result{}, nil, fmt.Errorf("crash faults require the goroutine runtime")
		}
		opts.Faults = faults.NewInjector(plan)
	}
	res, env := coordinated.Run(d, opts)
	return res, env, nil
}

func runScenario(d int, s scenario, bases map[string]baseline) outcome {
	o := outcome{name: s.name, engine: s.engine}
	plan := s.plan(d)
	switch s.engine {
	case engineDES:
		res, env, err := runDES(d, plan)
		if err != nil {
			o.invariant = err.Error()
			return o
		}
		o.moves, o.mkspan = res.TotalMoves, res.Makespan
		o.invariant = checkLog(env.Log(), d)
		o.pass = res.Ok() && o.invariant == "ok"
	default:
		rep, err := runFT(d, s.engine, plan)
		if err != nil {
			o.invariant = err.Error()
			return o
		}
		o.moves, o.mkspan = rep.Result.TotalMoves, rep.Log.Makespan()
		o.crashes, o.reassigned = rep.Crashes, rep.Reassigned
		o.reelections, o.spares = rep.Reelections, rep.SparesUsed
		o.invariant = checkLog(rep.Log, d)
		o.pass = rep.Result.Ok() && o.invariant == "ok"
		if plan.Crashes() != rep.Crashes {
			o.invariant = fmt.Sprintf("planned %d crashes, %d fired", plan.Crashes(), rep.Crashes)
			o.pass = false
		}
	}
	if b, ok := bases[s.engine]; ok {
		o.dMoves = o.moves - b.moves
		o.dTime = o.mkspan - b.mkspan
	}
	return o
}

// report renders the whole campaign deterministically.
func report(d int, bases map[string]baseline, outs []outcome) (string, bool) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "fault campaign on H_%d (%d nodes)\n\n", d, 1<<uint(d))
	fmt.Fprintf(&sb, "baselines (fault-free): ")
	for _, e := range []string{engineCleanFT, engineVisFT, engineDES} {
		b := bases[e]
		fmt.Fprintf(&sb, "%s moves=%d time=%d  ", e, b.moves, b.mkspan)
	}
	sb.WriteString("\n\n")

	t := metrics.NewTable("scenario", "engine", "moves", "Δmoves", "time", "Δtime",
		"crashes", "reassigned", "reelections", "spares", "invariants", "verdict")
	allPass := true
	for _, o := range outs {
		verdict := "PASS"
		if !o.pass {
			verdict = "FAIL"
			allPass = false
		}
		t.AddRow(o.name, o.engine, o.moves, fmt.Sprintf("%+d", o.dMoves), o.mkspan,
			fmt.Sprintf("%+d", o.dTime), o.crashes, o.reassigned, o.reelections,
			o.spares, o.invariant, verdict)
	}
	sb.WriteString(t.Markdown())
	if allPass {
		fmt.Fprintf(&sb, "\nall %d scenarios passed\n", len(outs))
	} else {
		sb.WriteString("\nCAMPAIGN FAILED\n")
	}
	return sb.String(), allPass
}

// runCampaign executes baselines plus every scenario and returns the
// canonical report. The three fault-free baselines and then the
// scenarios fan out across workers; every run is internally
// deterministic and the report is assembled from input-ordered
// results, so the rendered bytes are identical for any worker count
// (workers <= 1 is the serial path).
func runCampaign(d, workers int) (string, bool, error) {
	engines := []string{engineCleanFT, engineVisFT, engineDES}
	baseRuns, err := sched.Map(workers, len(engines), func(i int) (baseline, error) {
		if engines[i] == engineDES {
			res, _, err := runDES(d, nil)
			if err != nil {
				return baseline{}, err
			}
			return baseline{res.TotalMoves, res.Makespan}, nil
		}
		rep, err := runFT(d, engines[i], nil)
		if err != nil {
			return baseline{}, err
		}
		return baseline{rep.Result.TotalMoves, rep.Log.Makespan()}, nil
	})
	if err != nil {
		return "", false, err
	}
	bases := map[string]baseline{}
	for i, e := range engines {
		bases[e] = baseRuns[i]
	}

	scenarios := campaign()
	outs, err := sched.Collect(workers, len(scenarios), func(i int) outcome {
		return runScenario(d, scenarios[i], bases)
	})
	if err != nil {
		return "", false, err
	}
	rep, ok := report(d, bases, outs)
	return rep, ok, nil
}

func main() {
	var (
		dim     = flag.Int("d", 4, "hypercube dimension (n = 2^d), minimum 2")
		verify  = flag.Bool("verify", false, "run the campaign twice and require byte-identical reports")
		workers = flag.Int("workers", sched.DefaultWorkers(), "parallel workers for baselines and scenarios (1 = serial); output is identical for every value")
	)
	flag.Parse()
	if *dim < 2 {
		fmt.Fprintln(os.Stderr, "hqfaults: need -d >= 2 (the campaign's crash orders exist from d=2)")
		os.Exit(2)
	}

	rep, ok, err := runCampaign(*dim, *workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hqfaults:", err)
		os.Exit(2)
	}
	fmt.Print(rep)
	if *verify {
		again, _, err := runCampaign(*dim, *workers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hqfaults:", err)
			os.Exit(2)
		}
		if again != rep {
			fmt.Fprintln(os.Stderr, "hqfaults: rerun diverged from the first report — determinism broken")
			os.Exit(1)
		}
		fmt.Println("verify: rerun byte-identical")
	}
	if !ok {
		os.Exit(1)
	}
}
