// Command hqfaults runs the deterministic fault-injection campaign:
// declarative named fault scenarios executed against the
// crash-tolerant goroutine runtimes, the discrete-event engine, and —
// with wire-level link faults — the message-passing netsim engine,
// each checked against its fault-free baseline (runtime scenarios by
// the trace-replay invariant verifier; netsim scenarios by both the
// striped and locked validators, which must agree field-for-field).
//
// Usage:
//
//	hqfaults                           # run both families on H_4
//	hqfaults -d 5                      # bigger cube
//	hqfaults -family netsim            # only the wire-fault scenarios
//	hqfaults -scenarios list           # print every scenario name
//	hqfaults -scenarios crash-cascade  # rerun one scenario by name
//	hqfaults -verify                   # run twice, require byte-identical reports
//
// The report is deliberately built only from deterministic quantities
// (move counts, logical/virtual times, recovery statistics, and the
// wire layer's frame/drop/retransmit/dup/crash/partition/cascade
// counters plus the logical WireTime recovery bill), so two runs of
// the same campaign produce byte-identical output; -verify enforces
// that.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"hypersearch/internal/faults"
	"hypersearch/internal/heapqueue"
	"hypersearch/internal/hypercube"
	"hypersearch/internal/invariant"
	"hypersearch/internal/metrics"
	"hypersearch/internal/netarena"
	"hypersearch/internal/netsim"
	"hypersearch/internal/runtime"
	"hypersearch/internal/sched"
	"hypersearch/internal/strategy"
	"hypersearch/internal/strategy/coordinated"
	"hypersearch/internal/suggest"
	"hypersearch/internal/trace"
)

// Scenario families selectable with -family.
const (
	familyAll     = "all"
	familyRuntime = "runtime"
	familyNetsim  = "netsim"
)

// Engines a scenario can run on.
const (
	engineCleanFT = "clean-ft"  // crash-tolerant coordinated goroutine runtime
	engineVisFT   = "vis-ft"    // fault-injected visibility goroutine runtime
	engineDES     = "des-clean" // discrete-event CLEAN with kernel interception
)

// scenario is one named entry of the declarative campaign.
type scenario struct {
	name   string
	engine string
	plan   func(d int) *faults.Plan
}

// campaign returns the named scenarios, every one seeded and
// deterministic. Crash targets use the schedule-independent trigger
// counters: the synchronizer's own move sequence and per-order edge
// sequences (phase-0 escort keys p0.e<i> exist for every d >= 2).
func campaign() []scenario {
	return []scenario{
		{"cleaner-crash", engineCleanFT, func(d int) *faults.Plan {
			return &faults.Plan{Name: "cleaner-crash", Seed: 101, Faults: []faults.Fault{
				{Kind: faults.Crash, Target: "order:p0.e1", At: 1},
			}}
		}},
		{"synchronizer-crash", engineCleanFT, func(d int) *faults.Plan {
			// The d=2 synchronizer makes only 4 moves, so the trigger
			// must scale with the cube: 2d-1 fires at every d >= 2.
			return &faults.Plan{Name: "synchronizer-crash", Seed: 102, Faults: []faults.Fault{
				{Kind: faults.Crash, Target: faults.TargetSync, At: 2*d - 1},
			}}
		}},
		{"cleaner-stall", engineCleanFT, func(d int) *faults.Plan {
			return &faults.Plan{Name: "cleaner-stall", Seed: 103, Faults: []faults.Fault{
				{Kind: faults.Stall, Target: faults.TargetAny, At: 5, Delay: 200},
				{Kind: faults.Stall, Target: faults.TargetSync, At: 3, Delay: 120},
			}}
		}},
		{"latency-spike", engineDES, func(d int) *faults.Plan {
			return &faults.Plan{Name: "latency-spike", Seed: 104, Faults: []faults.Fault{
				{Kind: faults.LatencySpike, Target: faults.TargetAny, At: 10, Until: 60, Delay: 25},
				{Kind: faults.KernelLag, From: 20, To: 60},
			}}
		}},
		{"lock-starvation", engineVisFT, func(d int) *faults.Plan {
			return &faults.Plan{Name: "lock-starvation", Seed: 105, Faults: []faults.Fault{
				{Kind: faults.LockStarve, Target: faults.TargetAny, At: 6, Delay: 150},
				{Kind: faults.LockStarve, Target: faults.TargetAny, At: 11, Delay: 150},
			}}
		}},
		{"lost-wakeup", engineVisFT, func(d int) *faults.Plan {
			return &faults.Plan{Name: "lost-wakeup", Seed: 106, Faults: []faults.Fault{
				{Kind: faults.LostWakeup, At: 1, Until: 200},
			}}
		}},
		{"mixed", engineCleanFT, func(d int) *faults.Plan {
			return &faults.Plan{Name: "mixed", Seed: 107, Faults: []faults.Fault{
				{Kind: faults.Crash, Target: "order:p0.e0", At: 1},
				{Kind: faults.Crash, Target: faults.TargetSync, At: 2*d - 1},
				{Kind: faults.LatencySpike, Target: faults.TargetAny, At: 4, Until: 20, Delay: 10},
				{Kind: faults.Stall, Target: faults.TargetAny, At: 12, Delay: 80},
				{Kind: faults.LostWakeup, At: 3, Until: 15},
			}}
		}},
	}
}

// outcome collects the deterministic facts of one scenario run.
type outcome struct {
	name, engine string

	moves  int64 // total board moves
	dMoves int64 // overhead vs the engine's fault-free baseline
	mkspan int64 // logical (goroutines) or virtual (DES) completion time
	dTime  int64

	crashes, reassigned, reelections, spares int

	invariant string // "ok" or the first violation
	pass      bool
}

// baseline is an engine's fault-free reference run.
type baseline struct {
	moves, mkspan int64
}

// ftConfig is the goroutine-runtime configuration of the campaign: a
// fixed scheduler seed, mild real latency, and a lease TTL short
// enough for a snappy CLI run yet still 60x the heartbeat.
func ftConfig(seed int64, plan *faults.Plan) runtime.Config {
	return runtime.Config{
		Seed:           seed,
		MaxLatency:     300 * time.Microsecond,
		Faults:         plan,
		Record:         true,
		HeartbeatEvery: 2 * time.Millisecond,
		LeaseTTL:       120 * time.Millisecond,
		FaultUnit:      50 * time.Microsecond,
	}
}

func checkLog(l *trace.Log, d int) string {
	rep, err := invariant.Check(l, hypercube.New(d), 0)
	if err != nil {
		return err.Error()
	}
	if !rep.Ok() {
		if len(rep.Violations) > 0 {
			return rep.Violations[0]
		}
		return rep.String()
	}
	return "ok"
}

func runFT(d int, engine string, plan *faults.Plan) (runtime.FTReport, error) {
	if engine == engineVisFT {
		return runtime.RunVisibilityFT(d, ftConfig(7, plan))
	}
	return runtime.RunCleanFT(d, ftConfig(7, plan))
}

func runDES(d int, plan *faults.Plan) (metrics.Result, *strategy.Env, error) {
	opts := strategy.Options{Record: true, Contiguity: strategy.CheckEveryMove}
	if plan != nil {
		if err := plan.Validate(); err != nil {
			return metrics.Result{}, nil, err
		}
		if plan.RequiresRecovery() {
			return metrics.Result{}, nil, fmt.Errorf("crash faults require the goroutine runtime")
		}
		opts.Faults = faults.NewInjector(plan)
	}
	res, env := coordinated.Run(d, opts)
	return res, env, nil
}

func runScenario(d int, s scenario, bases map[string]baseline) outcome {
	o := outcome{name: s.name, engine: s.engine}
	plan := s.plan(d)
	switch s.engine {
	case engineDES:
		res, env, err := runDES(d, plan)
		if err != nil {
			o.invariant = err.Error()
			return o
		}
		o.moves, o.mkspan = res.TotalMoves, res.Makespan
		o.invariant = checkLog(env.Log(), d)
		o.pass = res.Ok() && o.invariant == "ok"
	default:
		rep, err := runFT(d, s.engine, plan)
		if err != nil {
			o.invariant = err.Error()
			return o
		}
		o.moves, o.mkspan = rep.Result.TotalMoves, rep.Log.Makespan()
		o.crashes, o.reassigned = rep.Crashes, rep.Reassigned
		o.reelections, o.spares = rep.Reelections, rep.SparesUsed
		o.invariant = checkLog(rep.Log, d)
		o.pass = rep.Result.Ok() && o.invariant == "ok"
		if plan.Crashes() != rep.Crashes {
			o.invariant = fmt.Sprintf("planned %d crashes, %d fired", plan.Crashes(), rep.Crashes)
			o.pass = false
		}
	}
	if b, ok := bases[s.engine]; ok {
		o.dMoves = o.moves - b.moves
		o.dTime = o.mkspan - b.mkspan
	}
	return o
}

// report renders the whole campaign deterministically.
func report(d int, bases map[string]baseline, outs []outcome) (string, bool) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "fault campaign on H_%d (%d nodes)\n\n", d, 1<<uint(d))
	fmt.Fprintf(&sb, "baselines (fault-free): ")
	for _, e := range []string{engineCleanFT, engineVisFT, engineDES} {
		b := bases[e]
		fmt.Fprintf(&sb, "%s moves=%d time=%d  ", e, b.moves, b.mkspan)
	}
	sb.WriteString("\n\n")

	t := metrics.NewTable("scenario", "engine", "moves", "Δmoves", "time", "Δtime",
		"crashes", "reassigned", "reelections", "spares", "invariants", "verdict")
	allPass := true
	for _, o := range outs {
		verdict := "PASS"
		if !o.pass {
			verdict = "FAIL"
			allPass = false
		}
		t.AddRow(o.name, o.engine, o.moves, fmt.Sprintf("%+d", o.dMoves), o.mkspan,
			fmt.Sprintf("%+d", o.dTime), o.crashes, o.reassigned, o.reelections,
			o.spares, o.invariant, verdict)
	}
	sb.WriteString(t.Markdown())
	if allPass {
		fmt.Fprintf(&sb, "\nall %d scenarios passed\n", len(outs))
	} else {
		sb.WriteString("\nCAMPAIGN FAILED\n")
	}
	return sb.String(), allPass
}

// Netsim engines a wire-fault scenario can run on.
const (
	engineNetsimVis   = "netsim-vis"   // visibility: full complements down the broadcast tree
	engineNetsimClone = "netsim-clone" // cloning: one agent per tree edge
	engineNetsimClean = "netsim-clean" // coordinated: delivery faults only (no host crashes)
)

// netScenario is one wire-fault entry of the campaign.
type netScenario struct {
	name   string
	engine string
	plan   func(d int) *faults.Plan
}

// netsimCampaign returns the wire-fault scenarios, expressed against
// the concrete broadcast-tree links of H_d. Frame numbering per link
// is fixed by the host program order: on a parent->child tree link
// the guarded beacon is frame 1 and agent dispatches follow; on a
// pure dependency link the beacon is the only frame. Triggers count
// those sequence numbers, so every plan is deterministic by
// construction.
func netsimCampaign() []netScenario {
	return []netScenario{
		{"lossy-links", engineNetsimVis, func(d int) *faults.Plan {
			bt := heapqueue.New(d)
			c0 := bt.Children(0)[0]
			p := &faults.Plan{Name: "lossy-links", Seed: 201, Faults: []faults.Fault{
				{Kind: faults.LinkDrop, Target: faults.LinkTarget(0, c0), At: 1, Until: 8, Times: 2},
			}}
			if gcs := bt.Children(c0); len(gcs) > 0 {
				p.Faults = append(p.Faults, faults.Fault{
					Kind: faults.LinkDrop, Target: faults.LinkTarget(c0, gcs[0]), At: 1, Until: 4, Times: 1,
				})
			}
			return p
		}},
		{"dup-storm", engineNetsimVis, func(d int) *faults.Plan {
			bt := heapqueue.New(d)
			c0 := bt.Children(0)[0]
			p := &faults.Plan{Name: "dup-storm", Seed: 202, Faults: []faults.Fault{
				{Kind: faults.LinkDup, Target: faults.LinkTarget(0, c0), At: 1, Until: 16},
				{Kind: faults.LinkDelay, Target: faults.LinkTarget(0, c0), At: 2, Until: 5, Delay: 400},
			}}
			if gcs := bt.Children(c0); len(gcs) > 0 {
				p.Faults = append(p.Faults, faults.Fault{
					Kind: faults.LinkDup, Target: faults.LinkTarget(c0, gcs[0]), At: 1, Until: 8,
				})
			}
			return p
		}},
		{"beacon-blackout", engineNetsimVis, func(d int) *faults.Plan {
			// All of the last node's neighbours are smaller, so every
			// link into it opens with a beacon: swallow them all and
			// let the ARQ re-deliver the bits.
			h := hypercube.New(d)
			p := &faults.Plan{Name: "beacon-blackout", Seed: 203}
			last := h.Order() - 1
			for _, u := range h.SmallerNeighbours(last) {
				p.Faults = append(p.Faults, faults.Fault{
					Kind: faults.LinkDrop, Target: faults.LinkTarget(u, last), At: 1, Times: 3,
				})
			}
			return p
		}},
		{"host-crash", engineNetsimVis, func(d int) *faults.Plan {
			// Frame 2 on the root's first tree link is the first agent
			// dispatch: the child crashes mid-gather, loses its soft
			// state, and rebuilds from the order-ledger replay.
			bt := heapqueue.New(d)
			c0 := bt.Children(0)[0]
			return &faults.Plan{Name: "host-crash", Seed: 204, Faults: []faults.Fault{
				{Kind: faults.HostCrash, Target: faults.LinkTarget(0, c0), At: 2},
			}}
		}},
		{"clone-mixed", engineNetsimClone, func(d int) *faults.Plan {
			bt := heapqueue.New(d)
			c0 := bt.Children(0)[0]
			return &faults.Plan{Name: "clone-mixed", Seed: 205, Faults: []faults.Fault{
				{Kind: faults.LinkDrop, Target: faults.LinkTarget(0, c0), At: 1, Until: 2, Times: 2},
				{Kind: faults.LinkDup, Target: faults.LinkTarget(0, c0), At: 1, Until: 2},
				{Kind: faults.HostCrash, Target: faults.LinkTarget(0, c0), At: 2},
			}}
		}},
		{"homebase-islanded", engineNetsimVis, func(d int) *faults.Plan {
			// The partition severs every link incident to the homebase
			// mid-sweep: the boot beacon and the first dispatches on each
			// outgoing link are parked in the cut and released in
			// per-link order when it heals 600 logical units later. The
			// run must land on the fault-free move and message counts
			// with the heal window as its only Δtime bill.
			return &faults.Plan{Name: "homebase-islanded", Seed: 206, Faults: []faults.Fault{
				{Kind: faults.Partition, Target: faults.LinksTarget(faults.IslandLinks(0, d)),
					At: 1, Until: 3, Delay: 600},
			}}
		}},
		{"crash-cascade", engineNetsimVis, func(d int) *faults.Plan {
			// Host 1 is single-fed (its only smaller neighbour is the
			// root), so its ledger holds exactly 2 entries when frame 2
			// fires: threshold 2 trips deterministically and the
			// recovery load crashes its larger neighbours too.
			victims := []int{3}
			if d >= 3 {
				victims = append(victims, 5)
			}
			return &faults.Plan{Name: "crash-cascade", Seed: 207, Faults: []faults.Fault{
				{Kind: faults.Cascade, Target: faults.LinkTarget(0, 1), At: 2,
					Threshold: 2, Victims: victims},
			}}
		}},
		{"clean-cut", engineNetsimClean, func(d int) *faults.Plan {
			// The coordinated engine under a dimension-1 subcube cut plus
			// frame loss: couriers and the synchronizer park in the cut
			// and the ARQ re-delivers the dropped hop, with the whole
			// recovery billed to WireTime.
			return &faults.Plan{Name: "clean-cut", Seed: 208, Faults: []faults.Fault{
				{Kind: faults.Partition, Target: faults.CutDimTarget(1), At: 1, Until: 2, Delay: 500},
				{Kind: faults.LinkDrop, Target: faults.LinkTarget(0, 2), At: 1, Until: 2, Times: 2},
			}}
		}},
	}
}

// netOutcome collects the deterministic facts of one wire-fault run.
type netOutcome struct {
	name, engine string

	moves, dMoves         int64
	agentMsgs, beaconMsgs int64
	frames, drops         int64
	retransmits, dups     int64
	crashes, cascades     int64
	partitioned           int64
	dTime                 int64 // logical recovery bill (WireTime; fault-free = 0)

	check string // "ok" or the first failed check
	pass  bool
}

// netBaseline is a netsim engine's fault-free reference run.
type netBaseline struct {
	moves, agentMsgs, beaconMsgs int64
}

func netsimConfig(plan *faults.Plan, mode netsim.ValidatorMode) netsim.Config {
	return netsim.Config{
		Seed:       7,
		MaxLatency: 300 * time.Microsecond,
		Validator:  mode,
		Faults:     plan,
	}
}

func runNetsim(a *netarena.Arena, d int, engine string, plan *faults.Plan, mode netsim.ValidatorMode) netsim.Stats {
	switch engine {
	case engineNetsimClone:
		return a.RunCloning(d, netsimConfig(plan, mode))
	case engineNetsimClean:
		return a.RunClean(d, netsimConfig(plan, mode))
	default:
		return a.Run(d, netsimConfig(plan, mode))
	}
}

// runNetScenario executes one wire-fault scenario under both validator
// implementations: the run must terminate monotone, contiguous and
// all-clean with zero recontaminations on both, with field-identical
// stats, and recovery must leave the logical run unchanged against
// the fault-free baseline.
func runNetScenario(a *netarena.Arena, d int, s netScenario, bases map[string]netBaseline) netOutcome {
	o := netOutcome{name: s.name, engine: s.engine}
	plan := s.plan(d)
	striped := runNetsim(a, d, s.engine, plan, netsim.ValidatorStriped)
	locked := runNetsim(a, d, s.engine, plan, netsim.ValidatorLocked)

	o.moves = striped.TotalMoves
	o.agentMsgs, o.beaconMsgs = striped.AgentMessages, striped.BeaconMessages
	o.frames, o.drops = striped.Link.Frames, striped.Link.Drops
	o.retransmits, o.dups = striped.Link.Retransmits, striped.Link.Dups
	o.crashes, o.cascades = striped.Link.Crashes, striped.Link.Cascades
	o.partitioned = striped.Link.Partitioned
	o.dTime = striped.Link.WireTime // a fault-free wire bills zero

	o.check = "ok"
	switch b := bases[s.engine]; {
	case striped != locked:
		o.check = "validator stats diverge"
	case !striped.Captured || !striped.MonotoneOK || !striped.ContiguousOK:
		o.check = fmt.Sprintf("not clean: captured=%v monotone=%v contiguous=%v",
			striped.Captured, striped.MonotoneOK, striped.ContiguousOK)
	case striped.Recontaminations != 0:
		o.check = fmt.Sprintf("%d recontaminations", striped.Recontaminations)
	case striped.AgentMessages != b.agentMsgs || striped.BeaconMessages != b.beaconMsgs:
		o.check = fmt.Sprintf("recovery changed the wire: agents %d->%d beacons %d->%d",
			b.agentMsgs, striped.AgentMessages, b.beaconMsgs, striped.BeaconMessages)
	}
	o.dMoves = o.moves - bases[s.engine].moves
	o.pass = o.check == "ok"
	return o
}

// netReport renders the wire-fault section deterministically.
func netReport(bases map[string]netBaseline, outs []netOutcome) (string, bool) {
	var sb strings.Builder
	sb.WriteString("netsim wire-fault scenarios (striped + locked validators)\n\n")
	fmt.Fprintf(&sb, "baselines (fault-free): ")
	for _, e := range []string{engineNetsimVis, engineNetsimClone, engineNetsimClean} {
		b := bases[e]
		fmt.Fprintf(&sb, "%s moves=%d agents=%d beacons=%d  ", e, b.moves, b.agentMsgs, b.beaconMsgs)
	}
	sb.WriteString("\n\n")

	t := metrics.NewTable("scenario", "engine", "moves", "Δmoves", "Δtime", "agentMsgs", "beaconMsgs",
		"frames", "drops", "retransmits", "dups", "crashes", "cascades", "partitioned", "checks", "verdict")
	allPass := true
	for _, o := range outs {
		verdict := "PASS"
		if !o.pass {
			verdict = "FAIL"
			allPass = false
		}
		t.AddRow(o.name, o.engine, o.moves, fmt.Sprintf("%+d", o.dMoves), fmt.Sprintf("%+d", o.dTime),
			o.agentMsgs, o.beaconMsgs, o.frames, o.drops, o.retransmits, o.dups,
			o.crashes, o.cascades, o.partitioned, o.check, verdict)
	}
	sb.WriteString(t.Markdown())
	if allPass {
		fmt.Fprintf(&sb, "\nall %d wire-fault scenarios passed\n", len(outs))
	} else {
		sb.WriteString("\nWIRE-FAULT CAMPAIGN FAILED\n")
	}
	return sb.String(), allPass
}

// keepScenario reports whether the -scenarios selection (nil = all)
// includes name.
func keepScenario(keep map[string]bool, name string) bool {
	return keep == nil || keep[name]
}

// runNetsimCampaign executes the wire-fault baselines and scenarios
// with the same worker fan-out and input-ordered assembly as the
// runtime campaign. keep (nil = all) selects a scenario subset; with
// nothing selected the family is skipped entirely, baselines included.
func runNetsimCampaign(d, workers int, keep map[string]bool) (string, bool, error) {
	var scenarios []netScenario
	for _, s := range netsimCampaign() {
		if keepScenario(keep, s.name) {
			scenarios = append(scenarios, s)
		}
	}
	if len(scenarios) == 0 {
		return "", true, nil
	}
	// One network arena per worker (CollectW runs one task at a time
	// per worker), so scenario runs reuse fabrics instead of building
	// 2^d mailboxes and ledgers per run.
	if workers <= 0 {
		workers = sched.DefaultWorkers()
	}
	arenas := make([]*netarena.Arena, workers)
	for i := range arenas {
		arenas[i] = netarena.New()
	}
	engines := []string{engineNetsimVis, engineNetsimClone, engineNetsimClean}
	baseRuns, err := sched.CollectW(workers, len(engines), func(w, i int) netBaseline {
		s := runNetsim(arenas[w], d, engines[i], nil, netsim.ValidatorStriped)
		return netBaseline{s.TotalMoves, s.AgentMessages, s.BeaconMessages}
	})
	if err != nil {
		return "", false, err
	}
	bases := map[string]netBaseline{}
	for i, e := range engines {
		bases[e] = baseRuns[i]
	}

	outs, err := sched.CollectW(workers, len(scenarios), func(w, i int) netOutcome {
		return runNetScenario(arenas[w], d, scenarios[i], bases)
	})
	if err != nil {
		return "", false, err
	}
	rep, ok := netReport(bases, outs)
	return rep, ok, nil
}

// runCampaign executes baselines plus every selected scenario and
// returns the canonical report. The three fault-free baselines and
// then the scenarios fan out across workers; every run is internally
// deterministic and the report is assembled from input-ordered
// results, so the rendered bytes are identical for any worker count
// (workers <= 1 is the serial path). keep (nil = all) selects a
// scenario subset; with nothing selected the family is skipped.
func runCampaign(d, workers int, keep map[string]bool) (string, bool, error) {
	var scenarios []scenario
	for _, s := range campaign() {
		if keepScenario(keep, s.name) {
			scenarios = append(scenarios, s)
		}
	}
	if len(scenarios) == 0 {
		return "", true, nil
	}
	engines := []string{engineCleanFT, engineVisFT, engineDES}
	baseRuns, err := sched.Map(workers, len(engines), func(i int) (baseline, error) {
		if engines[i] == engineDES {
			res, _, err := runDES(d, nil)
			if err != nil {
				return baseline{}, err
			}
			return baseline{res.TotalMoves, res.Makespan}, nil
		}
		rep, err := runFT(d, engines[i], nil)
		if err != nil {
			return baseline{}, err
		}
		return baseline{rep.Result.TotalMoves, rep.Log.Makespan()}, nil
	})
	if err != nil {
		return "", false, err
	}
	bases := map[string]baseline{}
	for i, e := range engines {
		bases[e] = baseRuns[i]
	}

	outs, err := sched.Collect(workers, len(scenarios), func(i int) outcome {
		return runScenario(d, scenarios[i], bases)
	})
	if err != nil {
		return "", false, err
	}
	rep, ok := report(d, bases, outs)
	return rep, ok, nil
}

// runFamilies runs the selected scenario families and concatenates
// their deterministic reports. keep (nil = all) restricts both
// families to the named scenarios.
func runFamilies(d, workers int, family string, keep map[string]bool) (string, bool, error) {
	var sb strings.Builder
	ok := true
	if family == familyAll || family == familyRuntime {
		rep, pass, err := runCampaign(d, workers, keep)
		if err != nil {
			return "", false, err
		}
		sb.WriteString(rep)
		ok = ok && pass
	}
	if family == familyAll || family == familyNetsim {
		rep, pass, err := runNetsimCampaign(d, workers, keep)
		if err != nil {
			return "", false, err
		}
		if sb.Len() > 0 && rep != "" {
			sb.WriteString("\n")
		}
		sb.WriteString(rep)
		ok = ok && pass
	}
	return sb.String(), ok, nil
}

// scenarioNames lists every scenario of both families, campaign order.
func scenarioNames() (runtime, netsim []string) {
	for _, s := range campaign() {
		runtime = append(runtime, s.name)
	}
	for _, s := range netsimCampaign() {
		netsim = append(netsim, s.name)
	}
	return runtime, netsim
}

// parseScenarios resolves the -scenarios selection: "" means all
// (nil), otherwise a comma-separated list whose every name must exist
// in some family.
func parseScenarios(sel string) (map[string]bool, error) {
	if sel == "" {
		return nil, nil
	}
	rt, ns := scenarioNames()
	known := map[string]bool{}
	for _, n := range append(rt, ns...) {
		known[n] = true
	}
	keep := map[string]bool{}
	for _, n := range strings.Split(sel, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		if !known[n] {
			if close := suggest.Nearest(n, append(rt, ns...)); close != "" {
				return nil, fmt.Errorf("unknown scenario %q — did you mean %q? (use -scenarios list)", n, close)
			}
			return nil, fmt.Errorf("unknown scenario %q (use -scenarios list)", n)
		}
		keep[n] = true
	}
	if len(keep) == 0 {
		return nil, fmt.Errorf("-scenarios selected nothing")
	}
	return keep, nil
}

func main() {
	var (
		dim       = flag.Int("d", 4, "hypercube dimension (n = 2^d), minimum 2")
		verify    = flag.Bool("verify", false, "run the campaign twice and require byte-identical reports")
		workers   = flag.Int("workers", sched.DefaultWorkers(), "parallel workers for baselines and scenarios (1 = serial); output is identical for every value")
		family    = flag.String("family", familyAll, "scenario family to run: all, runtime, or netsim")
		scenarios = flag.String("scenarios", "", "comma-separated scenario names to run, or \"list\" to print every name and exit")
	)
	flag.Parse()
	if *scenarios == "list" {
		rt, ns := scenarioNames()
		fmt.Println("runtime:", strings.Join(rt, " "))
		fmt.Println("netsim: ", strings.Join(ns, " "))
		return
	}
	if *dim < 2 {
		fmt.Fprintln(os.Stderr, "hqfaults: need -d >= 2 (the campaign's crash orders exist from d=2)")
		os.Exit(2)
	}
	switch *family {
	case familyAll, familyRuntime, familyNetsim:
	default:
		fmt.Fprintf(os.Stderr, "hqfaults: unknown -family %q (want all, runtime, or netsim)\n", *family)
		os.Exit(2)
	}
	keep, err := parseScenarios(*scenarios)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hqfaults:", err)
		os.Exit(2)
	}

	rep, ok, err := runFamilies(*dim, *workers, *family, keep)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hqfaults:", err)
		os.Exit(2)
	}
	fmt.Print(rep)
	if *verify {
		again, _, err := runFamilies(*dim, *workers, *family, keep)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hqfaults:", err)
			os.Exit(2)
		}
		if again != rep {
			fmt.Fprintln(os.Stderr, "hqfaults: rerun diverged from the first report — determinism broken")
			os.Exit(1)
		}
		fmt.Println("verify: rerun byte-identical")
	}
	if !ok {
		os.Exit(1)
	}
}
