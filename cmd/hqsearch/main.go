// Command hqsearch runs one intruder-capture search on a hypercube and
// prints its cost and correctness summary.
//
// Usage:
//
//	hqsearch -strategy visibility -d 8
//	hqsearch -strategy clean -d 6 -async 9 -seed 3 -states
//	hqsearch -strategy visibility -d 6 -engine goroutines -async 50
//	hqsearch -strategy clean -d 5 -trace run.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hypersearch/internal/core"
	"hypersearch/internal/viz"
)

func main() {
	var (
		strat  = flag.String("strategy", core.Visibility, "strategy: "+strings.Join(core.Strategies(), ", "))
		dim    = flag.Int("d", 6, "hypercube dimension (n = 2^d)")
		engine = flag.String("engine", core.EngineDES, "engine: des, goroutines, or network")
		seed   = flag.Int64("seed", 0, "adversarial scheduler seed")
		async  = flag.Int64("async", 0, "max per-move latency (0 = unit latency / ideal time)")
		convoy = flag.Int("convoy", 1, "team size for the naive-convoy baseline")
		check  = flag.Bool("check", false, "verify contiguity after every move (slow)")
		states = flag.Bool("states", false, "print the final per-level state map")
		order  = flag.Bool("order", false, "print the per-node cleaning order")
		trace  = flag.String("trace", "", "write the run trace as JSON to this file")
	)
	flag.Parse()

	spec := core.Spec{
		Strategy:           *strat,
		Dim:                *dim,
		Engine:             *engine,
		Seed:               *seed,
		AdversarialLatency: *async,
		ConvoyTeam:         *convoy,
		CheckEveryMove:     *check,
		Record:             *trace != "" || *order,
	}
	res, env, err := core.Run(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hqsearch:", err)
		os.Exit(2)
	}
	fmt.Println(res)
	if !res.Ok() && !strings.HasPrefix(*strat, "naive") {
		fmt.Fprintln(os.Stderr, "hqsearch: run violated the search invariants")
		defer os.Exit(1)
	}
	if env != nil && *states {
		fmt.Print(viz.States(env.H, env.B))
	}
	if env != nil && *order {
		fmt.Print(viz.CleanOrder(env.H, env.B, false))
	}
	if env != nil && *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hqsearch:", err)
			os.Exit(2)
		}
		defer f.Close()
		if err := env.Log().WriteJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, "hqsearch:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "trace written to %s (%d events)\n", *trace, env.Log().Len())
	}
}
