// Command hqsearch runs one intruder-capture search on a hypercube and
// prints its cost and correctness summary.
//
// Usage:
//
//	hqsearch -strategy visibility -d 8
//	hqsearch -strategy clean -d 6 -async 9 -seed 3 -states
//	hqsearch -strategy visibility -d 6 -engine goroutines -async 50
//	hqsearch -strategy clean -d 5 -trace run.json
//	hqsearch -strategy visibility -d 20 -stream-trace run.jsonl
//
// Boards beyond d=16 run on the implicit topology and do not fit the
// materialized diagnostics: -trace (an in-memory log), -order and
// -states (per-node renderings) refuse to start there instead of
// exhausting memory mid-run. -stream-trace writes each event through
// to disk as a JSON line in O(1) memory and works at any dimension.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"hypersearch/internal/core"
	"hypersearch/internal/hypercube"
	"hypersearch/internal/trace"
	"hypersearch/internal/viz"
)

func main() {
	var (
		strat       = flag.String("strategy", core.Visibility, "strategy: "+strings.Join(core.Strategies(), ", "))
		dim         = flag.Int("d", 6, "hypercube dimension (n = 2^d)")
		engine      = flag.String("engine", core.EngineDES, "engine: des, goroutines, or network")
		seed        = flag.Int64("seed", 0, "adversarial scheduler seed")
		async       = flag.Int64("async", 0, "max per-move latency (0 = unit latency / ideal time)")
		convoy      = flag.Int("convoy", 1, "team size for the naive-convoy baseline")
		check       = flag.Bool("check", false, "verify contiguity after every move (slow)")
		states      = flag.Bool("states", false, "print the final per-level state map")
		order       = flag.Bool("order", false, "print the per-node cleaning order")
		tracePath   = flag.String("trace", "", "write the run trace as a JSON array to this file (in-memory log; d <= 16)")
		streamTrace = flag.String("stream-trace", "", "stream the run trace as JSONL to this file (O(1) memory; any d)")
	)
	flag.Parse()

	if *dim > hypercube.MaterializeLimit {
		deny := func(flagName, alternative string) {
			fmt.Fprintf(os.Stderr,
				"hqsearch: -%s needs a materialized board and d=%d exceeds the limit of %d; %s\n",
				flagName, *dim, hypercube.MaterializeLimit, alternative)
			os.Exit(2)
		}
		if *tracePath != "" {
			deny("trace", "use -stream-trace to write the events through to disk in O(1) memory")
		}
		if *order {
			deny("order", "recover per-node orders from a -stream-trace file instead of an in-memory rendering")
		}
		if *states {
			deny("states", "the summary line already reports the aggregate outcome for implicit-topology boards")
		}
	}

	spec := core.Spec{
		Strategy:           *strat,
		Dim:                *dim,
		Engine:             *engine,
		Seed:               *seed,
		AdversarialLatency: *async,
		ConvoyTeam:         *convoy,
		CheckEveryMove:     *check,
		Record:             *tracePath != "" || *order,
	}

	var (
		stream    *trace.Stream
		streamBuf *bufio.Writer
	)
	if *streamTrace != "" {
		if *engine != "" && *engine != core.EngineDES {
			fmt.Fprintln(os.Stderr, "hqsearch: -stream-trace needs the des engine")
			os.Exit(2)
		}
		f, err := os.Create(*streamTrace)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hqsearch:", err)
			os.Exit(2)
		}
		defer f.Close()
		streamBuf = bufio.NewWriterSize(f, 1<<20)
		stream = trace.NewStream(streamBuf)
		spec.Stream = stream
	}

	res, env, err := core.Run(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hqsearch:", err)
		os.Exit(2)
	}
	fmt.Println(res)
	if !res.Ok() && !strings.HasPrefix(*strat, "naive") {
		fmt.Fprintln(os.Stderr, "hqsearch: run violated the search invariants")
		defer os.Exit(1)
	}
	if stream != nil {
		err := stream.Err()
		if err == nil {
			err = streamBuf.Flush()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "hqsearch: streaming trace:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "trace streamed to %s (%d events)\n", *streamTrace, stream.Len())
	}
	if env != nil && *states {
		fmt.Print(viz.States(env.H, env.B))
	}
	if env != nil && *order {
		fmt.Print(viz.CleanOrder(env.H, env.B, false))
	}
	if env != nil && *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hqsearch:", err)
			os.Exit(2)
		}
		defer f.Close()
		if err := env.Log().WriteJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, "hqsearch:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "trace written to %s (%d events)\n", *tracePath, env.Log().Len())
	}
}
