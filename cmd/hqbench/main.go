// Command hqbench runs the tier-1 benchmark families with stable,
// fixed iteration counts and emits a machine-readable JSON report, so
// every PR can record a performance trajectory (BENCH_seed.json,
// BENCH_pr2.json, ...) and regressions are caught by diffing files
// rather than re-reading scrollback.
//
// Unlike `go test -bench`, which adapts b.N to the machine, hqbench
// pins the iteration count per family: ns/op moves with the hardware,
// but allocs/op and the paper's own cost metrics (agents, moves,
// steps) are exact and comparable across commits.
//
// Usage:
//
//	hqbench                      # all families -> BENCH.json
//	hqbench -out BENCH_pr2.json
//	hqbench -filter 'clean/'     # subset by regexp
//	hqbench -families clean/d=16,clean/d=20  # subset by exact name
//	hqbench -quick               # 1 iteration per family (CI smoke)
//	hqbench -list                # print family names and exit
//	hqbench -against BENCH_pr3.json  # regression gate (see internal/benchgate)
//	hqbench -reruns 3            # re-measure each family 3 times, keep the min
//
// With -reruns N > 1 each family is measured N times and ns/op is the
// minimum over the reruns; the relative spread (max-min)/min is
// recorded per family, and a run whose spread exceeds -spread-band is
// rejected (no output file, exit 1) — a reading that noisy must not
// become a baseline or gate one.
//
// Subset runs (-filter / -families) gate only the families they
// measured: the baseline is cut down with benchgate.Subset first, so
// deliberately skipped families are not reported missing.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strings"
	"time"

	"hypersearch/internal/benchgate"
	"hypersearch/internal/combin"
	"hypersearch/internal/core"
	"hypersearch/internal/des"
	"hypersearch/internal/envpool"
	"hypersearch/internal/faults"
	"hypersearch/internal/metrics"
	"hypersearch/internal/netarena"
	"hypersearch/internal/netsim"
	"hypersearch/internal/suggest"
	"hypersearch/internal/whiteboard"
)

// family is one named benchmark: a fixed iteration count and a body
// returning the paper's cost metrics for the last iteration.
type family struct {
	name  string
	iters int
	run   func() map[string]float64
}

// strategyMetrics extracts the paper's quantities from a run result.
func strategyMetrics(r metrics.Result) map[string]float64 {
	return map[string]float64{
		"agents": float64(r.TeamSize),
		"moves":  float64(r.TotalMoves),
		"steps":  float64(r.Makespan),
	}
}

// pool is the environment pool shared by every DES family: hqbench
// runs families serially, so one pool reuses a single environment per
// dimension across all iterations and strategies — what sweeps do in
// production, and what keeps allocs/op an honest steady-state figure.
var pool = envpool.New()

// arena is the netsim families' network arena: iterations after the
// warmup reuse one pooled fabric, so allocs/op measures the
// reused-arena path the experiment sweeps actually run.
var arena = netarena.New()

// mustRun executes one spec on the shared pool, failing loudly on any
// invariant violation: a benchmark that lies about correctness is
// worse than a slow one.
func mustRun(spec core.Spec) metrics.Result {
	res, env, err := core.RunWith(spec, pool)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hqbench:", err)
		os.Exit(1)
	}
	if !res.Ok() {
		fmt.Fprintf(os.Stderr, "hqbench: invariants violated: %s\n", res)
		os.Exit(1)
	}
	pool.Release(env)
	return res
}

// strategyFamily benchmarks one strategy at one dimension.
func strategyFamily(name string, d, iters int) family {
	return family{
		name:  fmt.Sprintf("%s/d=%d", name, d),
		iters: iters,
		run:   func() map[string]float64 { return strategyMetrics(mustRun(core.Spec{Strategy: name, Dim: d})) },
	}
}

// cleanScaleFamily benchmarks Algorithm CLEAN past the implicit-
// topology threshold and cross-checks every iteration against the
// paper's closed forms (Theorems 2 and 3; the DES run saves one move
// per root child because phase 0 places agents instead of escorting
// them up): a scale benchmark that silently swept the wrong number of
// nodes would be worse than no benchmark.
func cleanScaleFamily(d, iters int) family {
	return family{
		name:  fmt.Sprintf("%s/d=%d", core.Clean, d),
		iters: iters,
		run: func() map[string]float64 {
			res := mustRun(core.Spec{Strategy: core.Clean, Dim: d})
			if int64(res.TeamSize) != combin.CleanTeamSize(d) ||
				res.AgentMoves != combin.CleanAgentMoves(d)-int64(d) {
				fmt.Fprintf(os.Stderr, "hqbench: clean/d=%d diverged from the closed forms: %s\n", d, res)
				os.Exit(1)
			}
			return strategyMetrics(res)
		},
	}
}

// visibilityScaleFamily benchmarks Algorithm CLEAN WITH VISIBILITY on
// the event-driven inline engine past the materialization threshold,
// cross-checking every iteration against the paper's closed forms
// (Theorems 5, 7 and 8): team n/2, moves (d+1)*2^(d-2), makespan d. At
// d=20 that is a 1,048,576-node board swept by 524,288 agents with no
// per-node goroutines — the workload the engine exists for.
func visibilityScaleFamily(d, iters int) family {
	return family{
		name:  fmt.Sprintf("%s/d=%d", core.Visibility, d),
		iters: iters,
		run: func() map[string]float64 {
			res := mustRun(core.Spec{Strategy: core.Visibility, Dim: d})
			if int64(res.TeamSize) != combin.VisibilityAgents(d) ||
				res.TotalMoves != combin.VisibilityMoves(d) ||
				res.Makespan != combin.VisibilityTime(d) {
				fmt.Fprintf(os.Stderr, "hqbench: visibility/d=%d diverged from the closed forms: %s\n", d, res)
				os.Exit(1)
			}
			return strategyMetrics(res)
		},
	}
}

// families returns the full tier-1 suite. Iteration counts shrink with
// dimension so the whole run stays in CLI territory while every family
// still averages over several runs.
func families() []family {
	iters := func(d int) int {
		switch {
		case d <= 4:
			return 50
		case d <= 6:
			return 20
		case d <= 8:
			return 8
		case d <= 10:
			return 3
		default:
			return 2
		}
	}
	var fams []family
	for _, d := range []int{4, 6, 8, 10, 12} {
		fams = append(fams, strategyFamily(core.Clean, d, iters(d)))
	}
	// Scale points: d=16 is the largest dimension pooled runs still
	// materialize (hypercube.MaterializeLimit), d=20 the megannode
	// implicit-topology board the packed engine exists for. One and
	// two iterations keep the suite in CLI territory; the closed-form
	// self-check makes even a single iteration trustworthy.
	fams = append(fams, cleanScaleFamily(16, 2), cleanScaleFamily(20, 1))
	for _, d := range []int{4, 6, 8, 10, 12} {
		fams = append(fams, strategyFamily(core.Visibility, d, iters(d)))
	}
	fams = append(fams, visibilityScaleFamily(16, 2), visibilityScaleFamily(20, 1))
	fams = append(fams,
		strategyFamily(core.Cloning, 8, 8),
		strategyFamily(core.Synchronous, 8, 8),
		family{
			name:  "adversarial-clean/d=6",
			iters: 10,
			run: func() map[string]float64 {
				return strategyMetrics(mustRun(core.Spec{
					Strategy: core.Clean, Dim: 6, AdversarialLatency: 13, Seed: 1,
				}))
			},
		},
		family{
			name:  "des-throughput/events=100k",
			iters: 10,
			run: func() map[string]float64 {
				const events = 100_000
				s := des.New()
				count := 0
				var tick func()
				tick = func() {
					count++
					if count < events {
						s.After(1, tick)
					}
				}
				s.After(1, tick)
				s.Run()
				return map[string]float64{"events": events}
			},
		},
		family{
			name:  "whiteboard-ops/ops=100k",
			iters: 10,
			run: func() map[string]float64 {
				const ops = 100_000
				st := whiteboard.NewStore(1)
				agents := st.Field("agents")
				planned := st.Field("planned")
				b := st.At(0)
				for i := 0; i < ops; i++ {
					b.Add(agents, 1)
					if b.Read(agents) > 0 {
						b.Write(planned, 1)
					}
				}
				return map[string]float64{"ops": ops}
			},
		},
		family{
			name:  "netsim-visibility/d=6",
			iters: 10,
			run: func() map[string]float64 {
				st := arena.Run(6, netsim.Config{Seed: 1})
				if !st.Ok() {
					fmt.Fprintf(os.Stderr, "hqbench: netsim invariants violated: %s\n", st.Result)
					os.Exit(1)
				}
				return map[string]float64{
					"agents":  float64(st.TeamSize),
					"beacons": float64(st.BeaconMessages),
				}
			},
		},
		family{
			name:  "netsim-clean/d=6",
			iters: 10,
			run: func() map[string]float64 {
				st := arena.RunClean(6, netsim.Config{Seed: 1})
				if !st.Ok() {
					fmt.Fprintf(os.Stderr, "hqbench: netsim invariants violated: %s\n", st.Result)
					os.Exit(1)
				}
				return map[string]float64{
					"agents": float64(st.TeamSize),
					"moves":  float64(st.TotalMoves),
				}
			},
		},
		family{
			// The correlated-fault recovery path: a partition islanding
			// the homebase plus a crash cascade. The exported metrics are
			// faultlink's deterministic counters — the exact-equality
			// metrics gate turns any drift in the logical Δtime bill or
			// the fault schedule into a gate failure, the way F1's move
			// counts already are.
			name:  "netsim-faulted/d=6",
			iters: 10,
			run: func() map[string]float64 {
				plan := &faults.Plan{Name: "bench-correlated", Seed: 31, Faults: []faults.Fault{
					{Kind: faults.Partition, Target: faults.LinksTarget(faults.IslandLinks(0, 6)),
						At: 1, Until: 3, Delay: 600},
					{Kind: faults.Cascade, Target: faults.LinkTarget(0, 1), At: 2,
						Threshold: 2, Victims: []int{3, 5}},
				}}
				st := arena.Run(6, netsim.Config{Seed: 1, Faults: plan})
				if !st.Ok() {
					fmt.Fprintf(os.Stderr, "hqbench: netsim invariants violated: %s\n", st.Result)
					os.Exit(1)
				}
				return map[string]float64{
					"agents":      float64(st.TeamSize),
					"wiretime":    float64(st.Link.WireTime),
					"partitioned": float64(st.Link.Partitioned),
					"crashes":     float64(st.Link.Crashes),
					"cascades":    float64(st.Link.Cascades),
				}
			},
		},
	)
	return fams
}

// provenance collects the attribution block, best-effort: a missing
// git binary, a non-repo working directory or a non-Linux kernel just
// leave fields empty.
func provenance() *benchgate.Provenance {
	p := &benchgate.Provenance{
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
	}
	if out, err := exec.Command("git", "rev-parse", "HEAD").Output(); err == nil {
		p.GitCommit = strings.TrimSpace(string(out))
	}
	if rel, err := os.ReadFile("/proc/sys/kernel/osrelease"); err == nil {
		p.Kernel = strings.TrimSpace(string(rel))
	} else if out, err := exec.Command("uname", "-r").Output(); err == nil {
		p.Kernel = strings.TrimSpace(string(out))
	}
	return p
}

// measure runs one family: a warmup iteration (excluded), then iters
// timed iterations bracketed by mallocs accounting. ns/op is the
// MINIMUM over the iterations, not the mean: background load on a
// shared machine can only ever slow an iteration down, so the fastest
// one is the most reproducible estimate of the workload's true cost —
// which is what the regression gate needs to compare across runs.
// Allocation figures stay means; they are deterministic per iteration.
func measure(f family, quick bool) benchgate.Result {
	iters := f.iters
	if quick {
		iters = 1
	}
	last := f.run() // warmup, excluded from the measurement
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	best := int64(0)
	for i := 0; i < iters; i++ {
		start := time.Now()
		last = f.run()
		if ns := time.Since(start).Nanoseconds(); best == 0 || ns < best {
			best = ns
		}
	}
	runtime.ReadMemStats(&after)
	n := int64(iters)
	return benchgate.Result{
		Name:        f.name,
		Iters:       iters,
		NsPerOp:     best,
		AllocsPerOp: int64(after.Mallocs-before.Mallocs) / n,
		BytesPerOp:  int64(after.TotalAlloc-before.TotalAlloc) / n,
		Metrics:     last,
	}
}

// measureReruns measures one family reruns times, keeping the minimum
// ns/op (the reproducible estimate) and recording the relative spread
// of the readings. Allocation counts and paper metrics are
// deterministic per iteration, so the first rerun's values stand.
func measureReruns(f family, quick bool, reruns int) benchgate.Result {
	r := measure(f, quick)
	if reruns <= 1 {
		return r
	}
	min, max := r.NsPerOp, r.NsPerOp
	for i := 1; i < reruns; i++ {
		ns := measure(f, quick).NsPerOp
		if ns < min {
			min = ns
		}
		if ns > max {
			max = ns
		}
	}
	r.NsPerOp = min
	r.Reruns = reruns
	if min > 0 {
		r.NsSpread = float64(max-min) / float64(min)
	}
	return r
}

// familyNames lists the known family names for the unknown-entry
// suggestion.
func familyNames(fams []family) []string {
	names := make([]string, len(fams))
	for i, f := range fams {
		names[i] = f.name
	}
	return names
}

func main() {
	var (
		out        = flag.String("out", "BENCH.json", "output file ('-' for stdout)")
		filter     = flag.String("filter", "", "regexp selecting family names (default: all)")
		famNames   = flag.String("families", "", "comma-separated exact family names to run (subset; see -list)")
		quick      = flag.Bool("quick", false, "1 iteration per family (CI smoke run)")
		list       = flag.Bool("list", false, "print family names and exit")
		against    = flag.String("against", "", "baseline BENCH.json: exit 1 if the fresh measurements regress past the tolerance bands")
		reruns     = flag.Int("reruns", 1, "measure each family this many times and keep the minimum ns/op")
		spreadBand = flag.Float64("spread-band", benchgate.DefaultSpreadBand, "max relative ns/op spread across -reruns before the run is rejected as too noisy")
	)
	flag.Parse()

	fams := families()
	subset := false
	if *filter != "" {
		re, err := regexp.Compile(*filter)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hqbench:", err)
			os.Exit(2)
		}
		kept := fams[:0]
		for _, f := range fams {
			if re.MatchString(f.name) {
				kept = append(kept, f)
			}
		}
		fams = kept
		subset = true
	}
	if *famNames != "" {
		want := map[string]bool{}
		for _, n := range strings.Split(*famNames, ",") {
			want[strings.TrimSpace(n)] = true
		}
		kept := fams[:0]
		for _, f := range fams {
			if want[f.name] {
				kept = append(kept, f)
				delete(want, f.name)
			}
		}
		if len(want) > 0 {
			for n := range want {
				if close := suggest.Nearest(n, familyNames(families())); close != "" {
					fmt.Fprintf(os.Stderr, "hqbench: unknown family %q — did you mean %q? (see -list)\n", n, close)
				} else {
					fmt.Fprintf(os.Stderr, "hqbench: unknown family %q (see -list)\n", n)
				}
			}
			os.Exit(2)
		}
		fams = kept
		subset = true
	}
	if *list {
		for _, f := range fams {
			fmt.Println(f.name)
		}
		return
	}

	rep := benchgate.Report{
		Schema:     "hqbench/v1",
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Provenance: provenance(),
	}
	for _, f := range fams {
		r := measureReruns(f, *quick, *reruns)
		if r.Reruns > 1 {
			fmt.Fprintf(os.Stderr, "%-32s iters=%-3d %12d ns/op %10d allocs/op  spread=%.1f%%\n",
				r.Name, r.Iters, r.NsPerOp, r.AllocsPerOp, 100*r.NsSpread)
		} else {
			fmt.Fprintf(os.Stderr, "%-32s iters=%-3d %12d ns/op %10d allocs/op\n",
				r.Name, r.Iters, r.NsPerOp, r.AllocsPerOp)
		}
		rep.Families = append(rep.Families, r)
	}

	if noisy := benchgate.SpreadViolations(rep, *spreadBand); len(noisy) > 0 {
		fmt.Fprintf(os.Stderr, "hqbench: rejecting run, %d famil(ies) too noisy:\n", len(noisy))
		for _, v := range noisy {
			fmt.Fprintf(os.Stderr, "  %s\n", v)
		}
		os.Exit(1)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "hqbench:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
	} else if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "hqbench:", err)
		os.Exit(1)
	}

	if *against != "" {
		base, err := benchgate.Load(*against)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hqbench:", err)
			os.Exit(1)
		}
		if subset {
			names := make([]string, len(fams))
			for i, f := range fams {
				names[i] = f.name
			}
			base = benchgate.Subset(base, names)
		}
		violations := benchgate.Compare(base, rep, benchgate.DefaultNsTolerance)
		if len(violations) > 0 {
			fmt.Fprintf(os.Stderr, "hqbench: %d regression(s) against %s:\n", len(violations), *against)
			for _, v := range violations {
				fmt.Fprintf(os.Stderr, "  %s\n", v)
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "hqbench: within tolerance of %s (%d families)\n", *against, len(base.Families))
	}
}
