// Command hqoptimal explores the exact economics of contiguous
// monotone search on small graphs: the exhaustive minimal team, the
// isoperimetric lower bound, and what the generic strategies
// (level-sweep, greedy) spend on the same instance.
//
// Usage:
//
//	hqoptimal -g hypercube:4
//	hqoptimal -g mesh:3x4 -home 5
//	hqoptimal -g random:14:5:7 -maxteam 8
package main

import (
	"flag"
	"fmt"
	"os"

	"hypersearch/internal/isoperimetry"
	"hypersearch/internal/strategy/greedy"
	"hypersearch/internal/strategy/levelsweep"
	"hypersearch/internal/strategy/optimal"
	"hypersearch/internal/topologies"
)

func main() {
	var (
		spec    = flag.String("g", "hypercube:3", "topology spec (hypercube:D, path:N, ring:N, mesh:RxC, torus:RxC, complete:N, star:N, random:N:EXTRA:SEED)")
		home    = flag.Int("home", 0, "homebase vertex")
		maxTeam = flag.Int("maxteam", 10, "largest team size to try exhaustively")
		cap     = flag.Int("states", 8<<20, "exhaustive-search state cap")
		pareto  = flag.Bool("pareto", false, "print the full moves-versus-team frontier")
	)
	flag.Parse()

	g, err := topologies.Parse(*spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hqoptimal:", err)
		os.Exit(2)
	}
	if *home < 0 || *home >= g.Order() {
		fmt.Fprintf(os.Stderr, "hqoptimal: home %d out of range [0,%d)\n", *home, g.Order())
		os.Exit(2)
	}
	fmt.Printf("%s: %d vertices, homebase %d\n\n", *spec, g.Order(), *home)

	if g.Order() <= 24 {
		fmt.Printf("isoperimetric lower bound: %d\n", isoperimetry.ExactMonotoneLowerBound(g))
	} else {
		fmt.Println("isoperimetric lower bound: graph too large for the exact bound")
	}

	if g.Order() <= 26 {
		a := optimal.MinimalTeam(g, *home, *maxTeam, optimal.Limits{MaxStates: *cap})
		switch {
		case a.Feasible:
			fmt.Printf("exhaustive optimum:        %d agents (%d moves, %d states explored)\n",
				a.Team, a.Moves, a.States)
		case a.Aborted:
			fmt.Printf("exhaustive optimum:        aborted at %d states (raise -states)\n", a.States)
		default:
			fmt.Printf("exhaustive optimum:        > %d agents (none feasible up to -maxteam)\n", *maxTeam)
		}
	} else {
		fmt.Println("exhaustive optimum:        graph too large for exhaustive search")
	}

	ls, _, _ := levelsweep.Run(g, *home)
	fmt.Printf("level-sweep strategy:      %d agents, %d moves, captured=%v\n",
		ls.TeamSize, ls.TotalMoves, ls.Captured)
	gr, _, _ := greedy.Run(g, *home)
	fmt.Printf("greedy strategy:           %d agents, %d moves, captured=%v\n",
		gr.TeamSize, gr.TotalMoves, gr.Captured)

	if *pareto && g.Order() <= 26 {
		fmt.Println("\nmoves-versus-team frontier:")
		for _, a := range optimal.Pareto(g, *home, *maxTeam, optimal.Limits{MaxStates: *cap}) {
			switch {
			case a.Aborted:
				fmt.Printf("  team %2d: aborted at %d states\n", a.Team, a.States)
			case a.Feasible:
				fmt.Printf("  team %2d: %d moves\n", a.Team, a.Moves)
			default:
				fmt.Printf("  team %2d: infeasible\n", a.Team)
			}
		}
	}
}
