// Command hqreplay verifies a recorded search trace (as written by
// `hqsearch -trace`, or streamed by `hqsearch -stream-trace`) by
// replaying it against a fresh board, reporting the final invariants,
// and optionally printing the state evolution. The two formats — a
// JSON array and a JSONL stream — are told apart by the first byte.
//
// Usage:
//
//	hqsearch -strategy clean -d 5 -trace run.json
//	hqreplay -g hypercube:5 run.json
//	hqsearch -strategy clean -d 5 -stream-trace run.jsonl
//	hqreplay -g hypercube:5 -steps run.jsonl
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"hypersearch/internal/board"
	"hypersearch/internal/topologies"
	"hypersearch/internal/trace"
)

func main() {
	var (
		spec  = flag.String("g", "hypercube:6", "topology the trace was recorded on")
		home  = flag.Int("home", 0, "homebase vertex")
		steps = flag.Bool("steps", false, "print contamination counts as the replay progresses")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: hqreplay [-g SPEC] [-steps] TRACE.json")
		os.Exit(2)
	}

	g, err := topologies.Parse(*spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hqreplay:", err)
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "hqreplay:", err)
		os.Exit(2)
	}
	defer f.Close()
	log, err := readTrace(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hqreplay:", err)
		os.Exit(2)
	}
	fmt.Printf("replaying %d events on %s...\n", log.Len(), *spec)

	if *steps {
		replayVerbose(g, *home, log)
		return
	}
	b, err := log.Replay(g, *home)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hqreplay:", err)
		os.Exit(1)
	}
	report(b)
}

// readTrace decodes either trace format: `-trace` writes one JSON
// array (first byte '['), `-stream-trace` writes JSONL (one object
// per line).
func readTrace(f *os.File) (*trace.Log, error) {
	r := bufio.NewReader(f)
	first, err := r.Peek(1)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	if first[0] == '[' {
		return trace.ReadJSON(r)
	}
	return trace.ReadJSONL(r)
}

func replayVerbose(g interface {
	Order() int
	Neighbours(int) []int
}, home int, log *trace.Log) {
	b := board.New(g, home)
	ids := map[int]int{}
	last := -1
	for _, e := range log.Events() {
		switch e.Kind {
		case trace.Place:
			ids[e.Agent] = b.Place(e.Time)
		case trace.Clone:
			ids[e.Agent] = b.Clone(e.To, e.Time)
		case trace.Move:
			b.Move(ids[e.Agent], e.To, e.Time)
		case trace.Terminate:
			b.Terminate(ids[e.Agent], e.Time)
		}
		if c := b.ContaminatedCount(); c != last {
			fmt.Printf("t=%-6d contaminated=%d\n", e.Time, c)
			last = c
		}
	}
	report(b)
}

func report(b *board.Board) {
	fmt.Printf("captured=%v monotone=%v contiguous=%v moves=%d agents=%d recontaminations=%d\n",
		b.AllClean(), b.MonotoneViolations() == 0, b.Contiguous(),
		b.Moves(), b.Agents(), b.Recontaminations())
	if !b.AllClean() || b.MonotoneViolations() != 0 {
		os.Exit(1)
	}
}
