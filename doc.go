// Package hypersearch reproduces "Contiguous Search in the Hypercube
// for Capturing an Intruder" (Flocchini, Huang, Luccio; IPPS 2005): a
// team of asynchronous mobile agents cleans a hypercube network so
// that an arbitrarily fast intruder can never re-enter cleaned
// territory and is inevitably captured.
//
// The implementation lives under internal/: the public entry point is
// internal/core (single-call API over strategies and engines), with
// the topology, search-state, simulation, strategy, runtime, and
// experiment packages beneath it. The root package carries the
// benchmark suite (bench_test.go) that regenerates every cost bound in
// the paper's evaluation; see DESIGN.md for the system inventory and
// EXPERIMENTS.md for measured-versus-claimed results.
package hypersearch
