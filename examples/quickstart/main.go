// Quickstart: run the paper's two strategies on a 6-dimensional
// hypercube and print what they cost.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"hypersearch/internal/core"
)

func main() {
	// Algorithm 1: a synchronizer agent coordinates a small team.
	clean, _, err := core.Run(core.Spec{Strategy: core.Clean, Dim: 6})
	if err != nil {
		log.Fatal(err)
	}
	// Algorithm 2: agents see their neighbours' states and act locally.
	vis, _, err := core.Run(core.Spec{Strategy: core.Visibility, Dim: 6})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Capturing an intruder in H_6 (64 nodes):")
	fmt.Printf("  coordinated CLEAN:      %2d agents, %4d moves, %4d steps\n",
		clean.TeamSize, clean.TotalMoves, clean.Makespan)
	fmt.Printf("  CLEAN WITH VISIBILITY:  %2d agents, %4d moves, %4d steps\n",
		vis.TeamSize, vis.TotalMoves, vis.Makespan)
	fmt.Println()
	fmt.Println("The paper's trade-off: the coordinated strategy needs fewer agents;")
	fmt.Println("the visibility strategy finishes in log n steps instead of O(n log n).")

	if !clean.Ok() || !vis.Ok() {
		log.Fatal("a run violated the search invariants")
	}
	fmt.Println("Both runs: intruder captured, no recontamination, clean region stayed connected.")
}
