// Virus containment: the scenario from the paper's introduction. A
// virus moves arbitrarily fast between hosts of a hypercube network,
// always fleeing the sweep; a team of software agents corners it.
//
// The example records a visibility-strategy run, then replays it move
// by move against a live intruder token, printing the shrinking
// contaminated region.
//
//	go run ./examples/viruscontainment
package main

import (
	"fmt"
	"log"

	"hypersearch/internal/board"
	"hypersearch/internal/core"
	"hypersearch/internal/intruder"
	"hypersearch/internal/trace"
	"hypersearch/internal/viz"
)

func main() {
	const d = 5
	_, env, err := core.Run(core.Spec{Strategy: core.Visibility, Dim: d, Record: true})
	if err != nil {
		log.Fatal(err)
	}

	h := env.H
	fresh := board.New(h, 0)
	virus := intruder.New(h, fresh, 42)
	fmt.Printf("A virus lurks at host %s of a %d-host network.\n", h.String(virus.At()), h.Order())
	fmt.Printf("Deploying %d agents from host %s...\n\n", env.B.Agents(), h.String(0))

	ids := map[int]int{}
	lastShown := -1
	for _, e := range env.Log().Events() {
		switch e.Kind {
		case trace.Place:
			ids[e.Agent] = fresh.Place(e.Time)
		case trace.Move:
			fresh.Move(ids[e.Agent], e.To, e.Time)
		case trace.Terminate:
			fresh.Terminate(ids[e.Agent], e.Time)
		}
		virus.React()
		if remaining := fresh.ContaminatedCount(); remaining != lastShown {
			lastShown = remaining
			if remaining%8 == 0 || remaining < 4 {
				fmt.Printf("t=%2d  %2d hosts still at risk; virus hides at %v\n",
					e.Time, remaining, hostName(h.Dim(), virus.At()))
			}
		}
	}

	fmt.Println()
	if virus.Caught() {
		fmt.Printf("Virus captured after %d forced relocations.\n\n", virus.Moves())
	} else {
		log.Fatal("the virus escaped — this must never happen")
	}
	fmt.Println("Final network state ('.'=clean, G=agent guard):")
	fmt.Print(viz.States(h, fresh))
}

func hostName(d, at int) string {
	if at < 0 {
		return "nowhere (caught)"
	}
	return fmt.Sprintf("%0*b", d, at)
}
