// General graphs: the contiguous-search toolkit beyond the hypercube.
// Runs the topology-generic strategies (level sweep, frontier greedy)
// over the catalog — mesh, torus, ring, complete graph, random — and,
// where the instance is small enough, shows the exact optimum and the
// isoperimetric lower bound next to them.
//
//	go run ./examples/generalgraphs
package main

import (
	"fmt"
	"log"

	"hypersearch/internal/graph"
	"hypersearch/internal/isoperimetry"
	"hypersearch/internal/metrics"
	"hypersearch/internal/strategy/greedy"
	"hypersearch/internal/strategy/levelsweep"
	"hypersearch/internal/strategy/meshsweep"
	"hypersearch/internal/strategy/optimal"
	"hypersearch/internal/strategy/torussweep"
	"hypersearch/internal/topologies"
	"hypersearch/internal/viz"
)

func main() {
	specs := []string{
		"mesh:4x4", "torus:4x4", "ring:12", "complete:8",
		"star:9", "random:14:5:7", "hypercube:4", "ccc:3", "butterfly:2",
	}
	table := metrics.NewTable("topology", "n", "lower bound", "optimal", "greedy", "level-sweep", "greedy moves")
	for _, spec := range specs {
		g, err := topologies.Parse(spec)
		if err != nil {
			log.Fatal(err)
		}
		lb, opt := "-", "-"
		if g.Order() <= 16 {
			lb = fmt.Sprint(isoperimetry.ExactMonotoneLowerBound(g))
			if a := optimal.MinimalTeam(g, 0, 12, optimal.Limits{}); a.Feasible {
				opt = fmt.Sprint(a.Team)
			}
		}
		gr, _, _ := greedy.Run(g, 0)
		ls, _, _ := levelsweep.Run(g, 0)
		if !gr.Ok() || !ls.Ok() {
			log.Fatalf("%s: a strategy violated the invariants", spec)
		}
		table.AddRow(spec, g.Order(), lb, opt, gr.TeamSize, ls.TeamSize, gr.TotalMoves)
	}
	fmt.Println("Contiguous monotone search across topologies (agents needed):")
	fmt.Print(table.Markdown())
	fmt.Println()
	fmt.Println("The greedy frontier heuristic matches the exhaustive optimum on every")
	fmt.Println("small instance above; the level sweep pays for its generality with the")
	fmt.Println("width of two consecutive BFS levels.")
	dedicatedSweeps()
	sanityComplete()
}

// dedicatedSweeps shows the structure-aware mesh and torus strategies
// with a grid snapshot of the finished board.
func dedicatedSweeps() {
	mr, mb, _ := meshsweep.Run(4, 7)
	tr, _, _ := torussweep.Run(4, 7)
	fmt.Println("\nDedicated sweeps (4x7):")
	fmt.Printf("  mesh-sweep:  %d agents (= min side), %d moves, captured=%v\n",
		mr.TeamSize, mr.TotalMoves, mr.Captured)
	fmt.Printf("  torus-sweep: %d agents (= 2*min side), %d moves, captured=%v\n",
		tr.TeamSize, tr.TotalMoves, tr.Captured)
	fmt.Println("\nFinal mesh board (G = terminated rank on the last column):")
	fmt.Print(viz.Grid(mb, 4, 7))
}

// sanityComplete spells out the K_n intuition: everything is adjacent
// to everything, so the frontier is the whole clean set and n-1 agents
// are necessary and sufficient.
func sanityComplete() {
	g := topologies.Complete(8)
	lb := isoperimetry.ExactMonotoneLowerBound(graph.Graph(g))
	gr, _, _ := greedy.Run(g, 0)
	fmt.Printf("\nK_8: lower bound %d, greedy uses %d — on complete graphs there is no\n", lb, gr.TeamSize)
	fmt.Println("geometry to exploit and nearly every host must be guarded at once.")
}
