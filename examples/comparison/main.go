// Comparison: the paper's trade-off table, live. Sweeps every strategy
// (and the oblivious baseline) across hypercube sizes and prints who
// wins on agents, time, and traffic.
//
//	go run ./examples/comparison
package main

import (
	"fmt"
	"log"

	"hypersearch/internal/core"
	"hypersearch/internal/metrics"
)

func main() {
	table := metrics.NewTable("d", "n", "strategy", "agents", "moves", "steps", "captured")
	for d := 3; d <= 9; d++ {
		for _, name := range []string{core.Clean, core.Visibility, core.Cloning, core.NaiveDFS} {
			res, _, err := core.Run(core.Spec{Strategy: name, Dim: d})
			if err != nil {
				log.Fatal(err)
			}
			table.AddRow(d, res.Nodes, name, res.TeamSize, res.TotalMoves, res.Makespan, res.Captured)
		}
	}
	fmt.Print(table.Markdown())
	fmt.Println()
	fmt.Println("Reading the table:")
	fmt.Println("  - clean      captures with the fewest agents but pays O(n log n) steps;")
	fmt.Println("  - visibility captures in exactly log n steps with n/2 agents;")
	fmt.Println("  - cloning    cuts traffic to n-1 moves at the same speed;")
	fmt.Println("  - naive-dfs  visits every host yet never captures: coverage is not capture.")
}
