// Async agents: the asynchronous model made literal. Every agent is a
// goroutine; a randomized scheduler injects latency before every move;
// whiteboards (mutex-guarded per-node storage) coordinate the team,
// including the CAS election of the synchronizer. Repeats both
// strategies over several seeds to show schedule-independence of the
// guarantees.
//
//	go run ./examples/asyncagents
package main

import (
	"fmt"
	"log"

	"hypersearch/internal/core"
)

func main() {
	const d = 6
	fmt.Printf("H_%d, goroutine engine, adversarial sleeps up to 50us per move\n\n", d)
	for _, name := range []string{core.Clean, core.Visibility} {
		fmt.Printf("%s:\n", name)
		for seed := int64(1); seed <= 5; seed++ {
			res, _, err := core.Run(core.Spec{
				Strategy:           name,
				Dim:                d,
				Engine:             core.EngineGoroutines,
				Seed:               seed,
				AdversarialLatency: 50,
			})
			if err != nil {
				log.Fatal(err)
			}
			status := "OK"
			if !res.Ok() {
				status = "VIOLATION"
				defer log.Fatal("invariants violated under asynchrony")
			}
			fmt.Printf("  seed %d: %3d agents, %4d moves, recontaminations=%d  [%s]\n",
				seed, res.TeamSize, res.TotalMoves, res.Recontaminations, status)
		}
	}
	fmt.Printf("\nAnd with no shared memory at all (network engine, H_%d):\n", d)
	for _, name := range []string{core.Clean, core.Visibility} {
		res, _, err := core.Run(core.Spec{
			Strategy:           name,
			Dim:                d,
			Engine:             core.EngineNetwork,
			Seed:               1,
			AdversarialLatency: 50,
		})
		if err != nil {
			log.Fatal(err)
		}
		if !res.Ok() {
			log.Fatal("invariants violated on the network engine")
		}
		fmt.Printf("  %-11s %3d agents migrated as messages, %4d moves, captured=%v\n",
			name+":", res.TeamSize, res.TotalMoves, res.Captured)
	}
	fmt.Println("\nEvery schedule captures the intruder with zero recontamination:")
	fmt.Println("the strategies' waiting conditions are monotone, so asynchrony is harmless.")
}
